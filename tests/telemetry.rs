//! Observability guarantees for the flight recorder and the sampled
//! telemetry series:
//!
//! - tracing is **inert**: a traced run produces a `RunResult`
//!   bit-identical to the untraced run (property-tested over the smoke
//!   grid of workloads × variants × seeds);
//! - the disabled path records nothing and allocates nothing;
//! - an undersized ring wraps and accounts every overflowed record;
//! - a tripped livelock watchdog carries the last recorder events when
//!   tracing was armed up front (the emergency-recorder path is covered
//!   in `tests/resilience.rs`);
//! - the sampler writes a schema-valid `cmpsim-telemetry-v1` JSONL
//!   artifact.

use cmpsim::{workload, SimError, System, SystemConfig, TraceOptions, Variant};
use cmpsim_harness::{gen, prop, prop_assert, prop_assert_eq};
use std::path::PathBuf;

const WARMUP: u64 = 1_000;
const MEASURE: u64 = 4_000;

fn smoke_config(seed: u64, variant: Variant) -> SystemConfig {
    variant.apply(SystemConfig::paper_default(2).with_seed(seed))
}

/// A fast-sampling in-memory trace so even smoke-length runs collect
/// both recorder events and series rows.
fn fast_trace() -> TraceOptions {
    TraceOptions { sample_period: 500, ..TraceOptions::default() }.in_memory()
}

/// The headline determinism contract: `CMPSIM_TRACE` observes, never
/// perturbs. Every counter and every f64 in `RunResult` must match
/// between a traced and an untraced run of the same cell.
#[test]
fn traced_run_is_bit_identical_to_untraced() {
    let names: Vec<&str> =
        cmpsim::all_workloads().iter().map(|s| s.name).collect();
    let cases = gen::triple(
        gen::select(names),
        gen::select(Variant::all().to_vec()),
        gen::u64s(1..1_000_000),
    );
    // Each case runs two full simulations; cap the default 128 cases at
    // a smoke-grid-sized sample (CMPSIM_PT_CASES can still lower it).
    let mut cfg = prop::Config::from_env();
    cfg.cases = cfg.cases.min(24);
    prop::check_with(cfg, "traced_run_is_bit_identical_to_untraced", &cases, |case| {
        let &(name, variant, seed) = case;
        let spec = workload(name).unwrap();

        let mut plain = System::new(smoke_config(seed, variant), &spec);
        plain.set_tracing(None);
        let untraced = plain.run(WARMUP, MEASURE).map_err(|e| e.to_string())?;

        let mut traced = System::new(smoke_config(seed, variant), &spec);
        traced.set_tracing(Some(fast_trace()));
        let result = traced.run(WARMUP, MEASURE).map_err(|e| e.to_string())?;

        prop_assert_eq!(&untraced, &result, "tracing perturbed the simulation");
        let recorded = traced.flight_recorder().map(|r| r.len()).unwrap_or(0);
        prop_assert!(recorded > 0, "traced run captured no events");
        prop_assert!(traced.telemetry_rows() > 0, "sampler produced no rows");
        Ok(())
    });
}

#[test]
fn disabled_path_records_nothing() {
    let spec = workload("zeus").unwrap();
    let mut sys = System::new(smoke_config(7, Variant::PrefetchCompression), &spec);
    sys.set_tracing(None);
    assert!(!sys.tracing_enabled());
    sys.run(WARMUP, MEASURE).unwrap();
    assert!(sys.flight_recorder().is_none(), "no recorder without tracing");
    assert_eq!(sys.telemetry_rows(), 0, "no series rows without tracing");
}

/// An undersized ring stays at capacity, keeps only the newest events,
/// and accounts everything it had to overwrite.
#[test]
fn tiny_ring_wraps_and_accounts_overflow() {
    let spec = workload("oltp").unwrap();
    let mut sys = System::new(smoke_config(3, Variant::PrefetchCompression), &spec);
    sys.set_tracing(Some(TraceOptions {
        ring_capacity: 16,
        ..fast_trace()
    }));
    sys.run(WARMUP, MEASURE).unwrap();
    let rec = sys.flight_recorder().expect("tracing armed");
    assert_eq!(rec.len(), 16, "ring holds exactly its capacity");
    assert!(rec.dropped() > 0, "a smoke run must overflow a 16-entry ring");
    // The retained window is the newest events: strictly late in the run.
    let newest = rec.last(16);
    assert_eq!(newest.len(), 16);
    assert!(newest[0].time > 0, "wrapped ring should only hold late events");
}

/// With tracing armed up front, a livelock error reports the real
/// flight-recorder tail, not the emergency recorder's.
#[test]
fn livelock_reports_recorder_tail_when_tracing_armed() {
    let spec = workload("zeus").unwrap();
    let cfg = smoke_config(11, Variant::Base).with_livelock_budget(50);
    let mut sys = System::new(cfg, &spec);
    sys.set_tracing(Some(fast_trace()));
    match sys.run(1_000, 4_000) {
        Err(SimError::Livelock { recent_events, diagnostic, .. }) => {
            assert!(!recent_events.is_empty(), "recorder tail must be attached");
            assert!(
                recent_events.iter().all(|e| e.starts_with("cycle ")),
                "events should be rendered records: {recent_events:?}"
            );
            assert!(
                !diagnostic.contains("armed on demand"),
                "pre-armed tracing must not claim the emergency recorder"
            );
        }
        other => panic!("expected Livelock with a 50-cycle budget, got {other:?}"),
    }
}

/// The sampler's on-disk artifact: one `cmpsim-telemetry-v1` header
/// line, then one flat-JSON row per sample with monotone `t`.
#[test]
fn sampler_writes_schema_valid_jsonl() {
    let dir = std::env::temp_dir()
        .join(format!("cmpsim-telemetry-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let spec = workload("apache").unwrap();
    let mut sys = System::new(smoke_config(5, Variant::BothCompression), &spec);
    sys.set_tracing(Some(TraceOptions {
        sample_period: 500,
        out_dir: Some(dir.clone()),
        ..TraceOptions::default()
    }));
    sys.run(WARMUP, MEASURE).unwrap();

    let artifacts: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("telemetry dir created")
        .filter_map(|e| Some(e.ok()?.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    assert_eq!(artifacts.len(), 1, "one run, one artifact: {artifacts:?}");
    let text = std::fs::read_to_string(&artifacts[0]).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 2, "header plus at least one sample:\n{text}");

    let header = lines[0];
    assert!(header.contains("\"schema\":\"cmpsim-telemetry-v1\""), "{header}");
    assert!(header.contains("\"workload\":\"apache\""), "{header}");
    assert!(header.contains("\"sample_period\":500"), "{header}");

    let mut last_t = -1.0f64;
    for row in &lines[1..] {
        for key in ["\"t\":", "\"l2_capacity_ratio\":", "\"link_utilization_pct\":", "\"core_ipc\":["] {
            assert!(row.contains(key), "row missing {key}: {row}");
        }
        let t: f64 = row
            .split("\"t\":")
            .nth(1)
            .and_then(|r| r.split(',').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("unparseable t in row: {row}"));
        assert!(t > last_t, "sample times must be strictly increasing: {row}");
        last_t = t;
    }

    let _ = std::fs::remove_dir_all(&dir);
}
