//! Cross-codec conformance laws plus end-to-end codec selection.
//!
//! The conformance half drives the harness's reusable law kit
//! (`cmpsim_harness::codec_conformance`) against all three shipped codecs
//! through the `Codec` trait. The end-to-end half runs short simulations
//! with each codec selected in the system config, checking that codec
//! choice flows through cache, link and memory without breaking the
//! engine's accounting.

use cmpsim::fpc::{Bdi, Codec, CodecKind, CompressedRepr, Fpc, Zca, LINE_BYTES};
use cmpsim::{workload, System, SystemConfig, Variant};
use cmpsim_harness::codec_conformance::{
    check_conformance, check_decode_zero_mask_sweep, CodecSpec,
};

/// Adapts any `Codec` implementation to the harness's fn-pointer spec.
/// The closures are non-capturing, so they coerce to `fn` pointers even
/// though they mention the type parameter.
fn spec_for<C: Codec>() -> CodecSpec<LINE_BYTES> {
    CodecSpec {
        name: C::NAME,
        max_segments: C::max_segments(),
        round_trip: |line| {
            let c = C::compress(line);
            (c.segments(), c.decompress())
        },
        segments: C::segments,
        decode_pair: |line| {
            let c = C::compress(line);
            (c.decompress(), c.decompress_reference())
        },
    }
}

#[test]
fn fpc_satisfies_codec_laws() {
    check_conformance(&spec_for::<Fpc>());
}

#[test]
fn fpc_decoders_agree_on_every_zero_mask() {
    // All 2^16 word-granularity zero layouts of a 64-byte line: every
    // zero-run length and placement the dispatch-table decoder can see.
    // The filler word sizes as Uncompressed, so each mask also exercises
    // run termination against the widest token.
    check_decode_zero_mask_sweep(&spec_for::<Fpc>(), 0x8042_FF85);
}

#[test]
fn bdi_satisfies_codec_laws() {
    check_conformance(&spec_for::<Bdi>());
}

#[test]
fn zca_satisfies_codec_laws() {
    check_conformance(&spec_for::<Zca>());
}

fn run_with(codec: CodecKind, name: &str) -> cmpsim::RunResult {
    let cfg = Variant::BothCompression
        .apply(SystemConfig::paper_default(4))
        .with_codec(codec)
        .with_seed(11);
    let spec = workload(name).expect("known workload");
    let mut sys = System::new(cfg, &spec);
    sys.run(10_000, 30_000).expect("simulation failed")
}

#[test]
fn every_codec_runs_end_to_end() {
    for codec in CodecKind::all() {
        for name in ["apache", "mgrid"] {
            let r = run_with(codec, name);
            assert!(r.runtime() > 0, "{codec}/{name}: zero runtime");
            assert!(r.ipc() > 0.0, "{codec}/{name}: zero IPC");
            assert!(
                r.stats.compression_ratio() >= 0.99,
                "{codec}/{name}: compression made the cache smaller ({})",
                r.stats.compression_ratio()
            );
        }
    }
}

#[test]
fn sampled_invariants_hold_under_every_codec() {
    // The VSC invariant checker validates fills against the *configured*
    // codec's geometry; run it forced-on with each codec to prove the
    // engine never stores a segment count outside that geometry.
    for codec in CodecKind::all() {
        let cfg = Variant::BothCompression
            .apply(SystemConfig::paper_default(2))
            .with_codec(codec)
            .with_seed(11)
            .with_invariant_checks(true);
        let spec = workload("apache").expect("known workload");
        let mut sys = System::new(cfg, &spec);
        let r = sys.run(5_000, 15_000);
        assert!(r.is_ok(), "{codec}: invariant violation: {:?}", r.err());
    }
}

#[test]
fn codec_selection_is_deterministic() {
    for codec in CodecKind::all() {
        let a = run_with(codec, "zeus");
        let b = run_with(codec, "zeus");
        assert_eq!(a.runtime(), b.runtime(), "{codec}");
        assert_eq!(a.stats.link.total_bytes, b.stats.link.total_bytes, "{codec}");
    }
}

#[test]
fn default_codec_is_fpc_bit_for_bit() {
    let spec = workload("apache").expect("known workload");
    let base = Variant::BothCompression.apply(SystemConfig::paper_default(4)).with_seed(11);
    let mut implicit = System::new(base.clone(), &spec);
    let mut explicit = System::new(base.with_codec(CodecKind::Fpc), &spec);
    let ri = implicit.run(10_000, 30_000).expect("simulation failed");
    let re = explicit.run(10_000, 30_000).expect("simulation failed");
    assert_eq!(ri.runtime(), re.runtime());
    assert_eq!(ri.stats.l2.demand_misses, re.stats.l2.demand_misses);
    assert_eq!(ri.stats.link.total_bytes, re.stats.link.total_bytes);
}

#[test]
fn richer_codecs_compress_at_least_as_well_as_zca() {
    // ZCA only catches all-zero lines; FPC and BDI both subsume that
    // class, so on a zero-rich commercial mix they can't do worse.
    let zca = run_with(CodecKind::Zca, "apache").stats.compression_ratio();
    let fpc = run_with(CodecKind::Fpc, "apache").stats.compression_ratio();
    let bdi = run_with(CodecKind::Bdi, "apache").stats.compression_ratio();
    assert!(fpc >= zca, "fpc {fpc} vs zca {zca}");
    assert!(bdi >= zca, "bdi {bdi} vs zca {zca}");
    assert!(zca >= 1.0, "zca {zca} must never shrink the cache");
}
