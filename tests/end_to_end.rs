//! End-to-end integration tests across the whole simulator stack.
//!
//! These use short ("smoke") simulations; they check invariants and
//! directional behavior, not calibrated magnitudes (those are the bench
//! harnesses' job).

use cmpsim::{workload, PrefetchMode, System, SystemConfig, Variant};

const WARM: u64 = 30_000;
const MEASURE: u64 = 80_000;

fn run(cfg: SystemConfig, name: &str) -> cmpsim::RunResult {
    let spec = workload(name).expect("known workload");
    let mut sys = System::new(cfg, &spec);
    sys.run(WARM, MEASURE).expect("simulation failed")
}

#[test]
fn deterministic_for_equal_seeds() {
    let cfg = Variant::PrefetchCompression.apply(SystemConfig::paper_default(4));
    let a = run(cfg.clone(), "zeus");
    let b = run(cfg, "zeus");
    assert_eq!(a.runtime(), b.runtime());
    assert_eq!(a.stats.l2.demand_misses, b.stats.l2.demand_misses);
    assert_eq!(a.stats.link.total_bytes, b.stats.link.total_bytes);
}

#[test]
fn different_seeds_diverge() {
    let base = SystemConfig::paper_default(4);
    let a = run(base.clone().with_seed(1), "zeus");
    let b = run(base.with_seed(2), "zeus");
    assert_ne!(a.runtime(), b.runtime());
}

#[test]
fn all_workloads_run_under_all_variants() {
    for spec in cmpsim::all_workloads() {
        for v in Variant::all() {
            let cfg = v.apply(SystemConfig::paper_default(2));
            let mut sys = System::new(cfg, &spec);
            let r = sys.run(5_000, 15_000).expect("simulation failed");
            assert!(r.runtime() > 0, "{}/{v}: zero runtime", spec.name);
            assert!(r.ipc() > 0.0, "{}/{v}: zero IPC", spec.name);
            assert!(
                r.stats.instructions >= 2 * 15_000,
                "{}/{v}: measured too few instructions",
                spec.name
            );
        }
    }
}

#[test]
fn every_measured_instruction_is_accounted() {
    let r = run(SystemConfig::paper_default(8), "apache");
    // Fixed work: 8 cores × MEASURE instructions (±1 per core for quota
    // clipping at event granularity).
    let expect = 8 * MEASURE;
    assert!(
        r.stats.instructions >= expect && r.stats.instructions <= expect + 8 * 16,
        "instructions {} vs quota {expect}",
        r.stats.instructions
    );
}

#[test]
fn compression_reduces_misses_on_compressible_workload() {
    // Longer run: capacity effects need a warm cache.
    let spec = workload("apache").unwrap();
    let base = SystemConfig::paper_default(8);
    let mut b = System::new(Variant::Base.apply(base.clone()), &spec);
    let rb = b.run(600_000, 300_000).expect("simulation failed");
    let mut c = System::new(Variant::CacheCompression.apply(base), &spec);
    let rc = c.run(600_000, 300_000).expect("simulation failed");
    assert!(
        rc.stats.compression_ratio() > 1.3,
        "apache should compress well, got {}",
        rc.stats.compression_ratio()
    );
    assert!(
        rc.stats.l2.demand_misses < rb.stats.l2.demand_misses,
        "compression should cut apache's L2 misses ({} vs {})",
        rc.stats.l2.demand_misses,
        rb.stats.l2.demand_misses
    );
}

#[test]
fn link_compression_cuts_traffic_on_compressible_workload() {
    let base = SystemConfig::paper_default(8);
    let rb = run(Variant::Base.apply(base.clone()), "apache");
    let rl = run(Variant::LinkCompression.apply(base), "apache");
    let per_miss_b = rb.stats.link.total_bytes as f64 / rb.stats.mem_reads.max(1) as f64;
    let per_miss_l = rl.stats.link.total_bytes as f64 / rl.stats.mem_reads.max(1) as f64;
    assert!(
        per_miss_l < per_miss_b * 0.85,
        "link compression should cut bytes/miss by >15% ({per_miss_l:.1} vs {per_miss_b:.1})"
    );
}

#[test]
fn incompressible_workload_stays_incompressible() {
    let r = run(Variant::CacheCompression.apply(SystemConfig::paper_default(4)), "apsi");
    let ratio = r.stats.compression_ratio();
    assert!(
        (0.99..1.1).contains(&ratio),
        "apsi's FP data should not compress, got {ratio}"
    );
}

#[test]
fn prefetching_covers_streaming_misses() {
    let base = SystemConfig::paper_default(8);
    let rb = run(Variant::Base.apply(base.clone()), "mgrid");
    let rp = run(Variant::Prefetch.apply(base), "mgrid");
    assert!(
        rp.stats.l2.demand_misses * 2 < rb.stats.l2.demand_misses,
        "unit-stride mgrid should be >50% covered ({} vs {})",
        rp.stats.l2.demand_misses,
        rb.stats.l2.demand_misses
    );
    assert!(rp.stats.l2.coverage_pct() > 40.0);
}

#[test]
fn adaptive_throttle_engages_on_hostile_workload() {
    let spec = workload("jbb").unwrap();
    let base = SystemConfig::paper_default(8);
    let mut p = System::new(Variant::Prefetch.apply(base.clone()), &spec);
    let rp = p.run(300_000, 200_000).expect("simulation failed");
    let mut a = System::new(Variant::AdaptivePrefetch.apply(base), &spec);
    let ra = a.run(300_000, 200_000).expect("simulation failed");
    assert!(
        ra.stats.l2.prefetches_issued < rp.stats.l2.prefetches_issued / 2,
        "throttle should cut jbb's junk prefetches ({} vs {})",
        ra.stats.l2.prefetches_issued,
        rp.stats.l2.prefetches_issued
    );
    assert!(ra.stats.harmful_prefetch_detections > 0, "harmful rule never fired");
}

#[test]
fn infinite_link_never_queues() {
    let cfg = SystemConfig::paper_default(4).with_link(cmpsim::LinkBandwidth::Infinite);
    let r = run(Variant::Prefetch.apply(cfg), "fma3d");
    assert_eq!(r.stats.link.queue_delay_cycles, 0);
    assert!(r.stats.link.total_bytes > 0);
}

#[test]
fn narrower_link_is_never_faster() {
    let spec = workload("fma3d").unwrap();
    let mut runtimes = Vec::new();
    for bw in [10u32, 20, 80] {
        let cfg = SystemConfig::paper_default(8).with_link(cmpsim::LinkBandwidth::GBps(bw));
        let mut sys = System::new(cfg, &spec);
        runtimes.push(sys.run(WARM, MEASURE).expect("simulation failed").runtime());
    }
    assert!(runtimes[0] >= runtimes[1], "10 GB/s faster than 20 GB/s?");
    assert!(runtimes[1] >= runtimes[2], "20 GB/s faster than 80 GB/s?");
}

#[test]
fn single_core_systems_work() {
    let r = run(SystemConfig::paper_default(1), "zeus");
    assert!(r.ipc() > 0.0 && r.ipc() <= 1.0, "1-wide core IPC bound");
}

#[test]
fn sixteen_core_systems_work() {
    let spec = workload("apache").unwrap();
    let mut sys = System::new(SystemConfig::paper_default(16), &spec);
    let r = sys.run(10_000, 30_000).expect("simulation failed");
    assert!(r.stats.instructions >= 16 * 30_000);
}

#[test]
fn prefetch_off_issues_no_prefetches() {
    let r = run(SystemConfig::paper_default(4), "mgrid");
    assert_eq!(r.stats.l1d.prefetches_issued, 0);
    assert_eq!(r.stats.l2.prefetches_issued, 0);
    assert_eq!(r.stats.l1i.prefetches_issued, 0);
}

#[test]
fn prefetch_mode_flag_controls_structure() {
    let cfg = SystemConfig::paper_default(2).with_prefetch(PrefetchMode::Adaptive);
    assert!(cfg.uses_vsc(), "adaptive prefetching borrows the VSC's tags");
}

#[test]
fn coherence_traffic_appears_only_with_sharing() {
    let base = SystemConfig::paper_default(8);
    let shared = run(base.clone(), "oltp"); // heavy shared pool
    let private = run(base, "mgrid"); // no sharing
    assert!(shared.stats.coherence.invalidations > 0, "oltp must invalidate");
    assert_eq!(private.stats.coherence.invalidations, 0, "mgrid shares nothing");
}
