//! Integration tests for the service-metrics layer: the grid drivers'
//! registry accounting agrees with the store's own stats and never
//! perturbs results, and the atomic-write discipline for metric
//! artifacts leaves no torn or temporary files.

use cmpsim::core::store::ResultStore;
use cmpsim::{run_grid_parallel_store, SimLength, SystemConfig, Variant};
use cmpsim_harness::metrics;
use std::sync::Arc;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cmpsim-metrics-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Everything registry-dependent lives in this one test: the registry is
/// process-global, so spreading assertions on counter deltas across
/// concurrently-running tests would race.
#[test]
fn grid_metrics_account_and_stay_inert() {
    if !metrics::enabled() {
        eprintln!("skipping: CMPSIM_METRICS=0");
        return;
    }
    let dir = temp_dir("grid");
    let base = SystemConfig::paper_default(2).with_seed(7);
    let len = SimLength { warmup: 1_000, measure: 4_000 };
    let specs = vec![
        cmpsim::workload("apsi").expect("known workload"),
        cmpsim::workload("mgrid").expect("known workload"),
    ];
    let variants = [Variant::Base, Variant::Prefetch];
    let cells = (specs.len() * variants.len()) as u64;

    let before = metrics::global().snapshot();
    let cold_store: Arc<ResultStore> = ResultStore::open(&dir);
    let cold = run_grid_parallel_store(&specs, &base, &variants, len, 2, &cold_store)
        .expect("cold grid simulates");
    let after_cold = metrics::global().snapshot();

    let d = |snap: &metrics::MetricsSnapshot, prev: &metrics::MetricsSnapshot, k: &str| {
        snap.counter(k).unwrap_or(0) - prev.counter(k).unwrap_or(0)
    };
    assert_eq!(d(&after_cold, &before, "grid_cells_computed"), cells);
    assert_eq!(d(&after_cold, &before, "grid_cells_cached"), 0);
    assert_eq!(d(&after_cold, &before, "store_published"), cells);
    assert_eq!(
        after_cold.histogram("grid_cell_compute_nanos").map_or(0, |h| h.count)
            - before.histogram("grid_cell_compute_nanos").map_or(0, |h| h.count),
        cells,
        "the compute-latency histogram records exactly the computed cells"
    );

    // Warm pass through a fresh handle: all cache, and — the inertness
    // contract — bit-identical results to the cold pass.
    let warm_store: Arc<ResultStore> = ResultStore::open(&dir);
    let warm = run_grid_parallel_store(&specs, &base, &variants, len, 2, &warm_store)
        .expect("warm grid resolves");
    let after_warm = metrics::global().snapshot();
    assert_eq!(d(&after_warm, &after_cold, "grid_cells_computed"), 0);
    assert_eq!(d(&after_warm, &after_cold, "grid_cells_cached"), cells);
    assert_eq!(cold.len(), warm.len());
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.workload, w.workload);
        assert_eq!(c.variant, w.variant);
        assert_eq!(c.result, w.result, "metrics recording must not perturb results");
    }

    // The registry agrees with the store's own counters for this handle.
    let stats = warm_store.stats();
    assert_eq!(stats.misses, 0);
    assert_eq!(stats.hits, cells);
    assert!(warm_store.resident_bytes() > 0);
    assert_eq!(
        after_warm.gauge("store_resident_bytes"),
        Some(warm_store.resident_bytes()),
        "resident_bytes() refreshes the occupancy gauge"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// `metrics::write_atomic` follows the store-header discipline: the
/// final file is complete, and no `.tmp` sibling survives.
#[test]
fn write_atomic_leaves_no_torn_artifacts() {
    let dir = temp_dir("atomic");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("metrics.prom");
    let body = "cmpsim_store_hits 42\ncmpsim_store_misses 7\n";
    metrics::write_atomic(&path, body).expect("atomic write");
    assert_eq!(std::fs::read_to_string(&path).expect("read back"), body);
    // Overwrite goes through the same tempfile + rename.
    metrics::write_atomic(&path, "cmpsim_store_hits 43\n").expect("atomic rewrite");
    assert_eq!(std::fs::read_to_string(&path).expect("read back"), "cmpsim_store_hits 43\n");
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("list dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "tempfile survived: {leftovers:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The flat-JSON snapshot line parses under the repo's own framing —
/// the exact contract the serve daemon's `{"metrics":1}` reply relies
/// on.
#[test]
fn snapshot_flat_json_roundtrips_through_repo_framing() {
    let snap = metrics::global().snapshot();
    let flat = snap.to_flat_json();
    let kvs = cmpsim::core::flatjson::parse_flat(&flat)
        .expect("snapshot line must be valid flat JSON");
    assert!(kvs.iter().any(|(k, v)| k == "metrics" && v.as_u64() == Some(1)));
}
