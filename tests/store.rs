//! Acceptance properties of the content-addressed result store:
//!
//! - **bit-inertness**: warm-store reruns return results bit-identical
//!   to the cold run (and to `run_grid_serial`) at 1, 2 and 8 threads;
//! - **sweep dedup**: two overlapping sweeps sharing a store compute
//!   each shared cell exactly once — sequentially (the second computes
//!   only its delta) and concurrently (in-flight leases);
//! - **corruption safety**: CRC-corrupted and torn records are skipped
//!   and recomputed, never served;
//! - **bounded size**: LRU eviction keeps the data files under budget
//!   while the most recently used sweep stays warm;
//! - the resilient driver consults the store too, and mirrors hits into
//!   its journal so a journal-only resume stays complete.

use cmpsim::core::experiment::{
    run_cells_resilient, run_grid_parallel_store, run_grid_resilient, run_grid_serial,
    run_variant, ResilienceOptions, SimLength,
};
use cmpsim::core::journal;
use cmpsim::core::store::{CellKey, ResultStore};
use cmpsim::{workload, SystemConfig, Variant};
use cmpsim_harness::Supervisor;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const VARIANTS: [Variant; 2] = [Variant::Base, Variant::PrefetchCompression];

fn short() -> SimLength {
    SimLength { warmup: 2_000, measure: 8_000 }
}

fn small_base() -> SystemConfig {
    SystemConfig::paper_default(2).with_seed(11)
}

/// A unique, pre-cleaned store directory for one test.
fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("cmpsim-store-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn warm_store_is_bit_identical_at_1_2_and_8_threads() {
    let specs = vec![workload("zeus").unwrap(), workload("apsi").unwrap()];
    let base = small_base();
    let dir = temp_store("bit-identity");
    let serial = run_grid_serial(&specs, &base, &VARIANTS, short()).unwrap();

    let cold_store = ResultStore::with_capacity(&dir, u64::MAX);
    let cold =
        run_grid_parallel_store(&specs, &base, &VARIANTS, short(), 2, &cold_store).unwrap();
    // RunResult derives PartialEq over every counter and every f64, so
    // == here is bit-exactness, not approximation.
    assert_eq!(serial, cold, "store-fed cold run must match the serial engine");
    assert_eq!(cold_store.stats().published, serial.len() as u64);

    for threads in [1, 2, 8] {
        let warm_store = ResultStore::with_capacity(&dir, u64::MAX);
        let warm =
            run_grid_parallel_store(&specs, &base, &VARIANTS, short(), threads, &warm_store)
                .unwrap();
        assert_eq!(serial, warm, "warm store diverged at {threads} threads");
        let s = warm_store.stats();
        assert_eq!(s.published, 0, "warm rerun must compute 0 cells ({threads} threads)");
        assert_eq!(s.misses, 0, "{threads} threads");
        assert_eq!(s.hits, serial.len() as u64, "{threads} threads");
        assert_eq!(s.corrupt_skipped, 0, "{threads} threads");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overlapping_sequential_sweeps_compute_only_the_delta() {
    let base = small_base();
    let dir = temp_store("overlap-seq");

    let sweep_a = vec![workload("apsi").unwrap(), workload("mgrid").unwrap()];
    let store = ResultStore::with_capacity(&dir, u64::MAX);
    run_grid_parallel_store(&sweep_a, &base, &VARIANTS, short(), 2, &store).unwrap();
    assert_eq!(store.stats().published, 4);

    // Sweep B shares apsi/mgrid with A and adds art: only art's cells
    // are simulated, through a *fresh handle* (a separate process would
    // behave identically).
    let sweep_b = vec![
        workload("apsi").unwrap(),
        workload("mgrid").unwrap(),
        workload("art").unwrap(),
    ];
    let store_b = ResultStore::with_capacity(&dir, u64::MAX);
    let cells_b =
        run_grid_parallel_store(&sweep_b, &base, &VARIANTS, short(), 2, &store_b).unwrap();
    let s = store_b.stats();
    assert_eq!(s.published, 2, "only art × 2 variants computed");
    assert_eq!(s.hits, 4, "apsi/mgrid served from sweep A's results");
    // And the shared cells are bit-identical to a from-scratch run.
    let scratch = run_grid_serial(&sweep_b, &base, &VARIANTS, short()).unwrap();
    assert_eq!(scratch, cells_b);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_sweeps_sharing_a_store_compute_each_cell_once() {
    let specs = vec![workload("zeus").unwrap(), workload("apsi").unwrap()];
    let base = small_base();
    let dir = temp_store("overlap-concurrent");
    let store = ResultStore::with_capacity(&dir, u64::MAX);
    let serial = run_grid_serial(&specs, &base, &VARIANTS, short()).unwrap();

    // Two identical sweeps race on one store handle. Leases guarantee
    // each of the 4 cells is simulated exactly once; the loser of each
    // race blocks until the winner publishes and is served its result.
    let threads: Vec<_> = (0..2)
        .map(|_| {
            let specs = specs.clone();
            let base = base.clone();
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                run_grid_parallel_store(&specs, &base, &VARIANTS, short(), 2, &store).unwrap()
            })
        })
        .collect();
    for t in threads {
        assert_eq!(t.join().unwrap(), serial, "every concurrent sweep sees identical cells");
    }
    let s = store.stats();
    assert_eq!(s.published, serial.len() as u64, "each cell computed exactly once");
    assert_eq!(s.hits + s.misses, 2 * serial.len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_and_torn_records_are_recomputed_not_served() {
    let specs = vec![workload("apsi").unwrap()];
    let base = small_base();
    let dir = temp_store("corruption");

    let store = ResultStore::with_capacity(&dir, u64::MAX);
    let cold = run_grid_parallel_store(&specs, &base, &VARIANTS, short(), 1, &store).unwrap();
    drop(store);

    // Flip a digit inside the first record's body and tear the tail off
    // the last one — an in-place bitrot plus a mid-append crash.
    let fp = journal::fingerprint(&base, short());
    let data = dir.join(format!("{fp:016x}.jsonl"));
    let text = std::fs::read_to_string(&data).unwrap();
    let mangled = text.replacen("\"seed\":11", "\"seed\":91", 1);
    assert_ne!(mangled, text, "corruption must actually hit a record");
    let mangled = &mangled[..mangled.len() - 15];
    std::fs::write(&data, mangled).unwrap();
    let _ = std::fs::remove_file(dir.join(format!("{fp:016x}.idx")));

    let warm_store = ResultStore::with_capacity(&dir, u64::MAX);
    let warm =
        run_grid_parallel_store(&specs, &base, &VARIANTS, short(), 1, &warm_store).unwrap();
    assert_eq!(cold, warm, "recomputed cells must be bit-identical");
    let s = warm_store.stats();
    assert_eq!(s.published, 2, "both damaged cells recomputed");
    assert!(s.corrupt_skipped >= 1, "the mangled record was detected");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resilient_driver_uses_and_feeds_the_store() {
    let specs = vec![workload("apsi").unwrap(), workload("mgrid").unwrap()];
    let base = small_base();
    let dir = temp_store("resilient");
    let journal_path = std::env::temp_dir()
        .join(format!("cmpsim-store-it-{}-resilient.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&journal_path);

    let supervisor =
        Supervisor { threads: 2, deadline: None, retries: 0, backoff: Duration::from_millis(1) };

    // Pre-warm the store with one sweep (no journal involved).
    let store = ResultStore::with_capacity(&dir, u64::MAX);
    run_grid_parallel_store(&specs, &base, &VARIANTS, short(), 2, &store).unwrap();

    // A resilient sweep over the same grid must simulate nothing: every
    // cell is a store hit, counted via the injected cell function.
    let calls = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&calls);
    let opts = ResilienceOptions {
        supervisor: supervisor.clone(),
        journal: Some(journal_path.clone()),
        store: Some(Arc::clone(&store)),
    };
    let len = short();
    let fp = journal::fingerprint(&base, len);
    let out = run_cells_resilient(&specs, &base, &VARIANTS, fp, &opts, move |s, b, v| {
        counter.fetch_add(1, Ordering::SeqCst);
        run_variant(s, b, v, len)
    });
    assert_eq!(calls.load(Ordering::SeqCst), 0, "warm resilient sweep computed a cell");
    let cells: Vec<_> = out.into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(cells, run_grid_serial(&specs, &base, &VARIANTS, len).unwrap());

    // Store hits were mirrored into the journal: a journal-only resume
    // (store disabled) also computes nothing.
    let calls2 = Arc::new(AtomicUsize::new(0));
    let counter2 = Arc::clone(&calls2);
    let opts = ResilienceOptions { supervisor, journal: Some(journal_path.clone()), store: None };
    let out = run_cells_resilient(&specs, &base, &VARIANTS, fp, &opts, move |s, b, v| {
        counter2.fetch_add(1, Ordering::SeqCst);
        run_variant(s, b, v, len)
    });
    assert_eq!(calls2.load(Ordering::SeqCst), 0, "journal resume re-simulated a mirrored cell");
    assert!(out.into_iter().all(|r| r.is_ok()));

    let _ = std::fs::remove_file(&journal_path);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_grid_resilient_populates_the_store_for_later_sweeps() {
    let specs = vec![workload("zeus").unwrap()];
    let base = small_base();
    let dir = temp_store("resilient-feeds");
    let store = ResultStore::with_capacity(&dir, u64::MAX);

    let opts = ResilienceOptions {
        supervisor: Supervisor {
            threads: 2,
            deadline: None,
            retries: 0,
            backoff: Duration::from_millis(1),
        },
        journal: None,
        store: Some(Arc::clone(&store)),
    };
    let first = run_grid_resilient(&specs, &base, &VARIANTS, short(), &opts);
    assert!(first.iter().all(|r| r.is_ok()));
    assert_eq!(store.stats().published, 2);

    // The published cells are directly addressable by key.
    let fp = journal::fingerprint(&base, short());
    for &v in &VARIANTS {
        assert!(
            store.get(fp, &CellKey::new("zeus", v, base.seed)).is_some(),
            "cell zeus/{v} missing from store"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lru_eviction_keeps_recent_sweeps_warm_within_budget() {
    let specs = vec![workload("apsi").unwrap()];
    let base = small_base();
    let dir = temp_store("lru-bound");

    // Size one sweep's data file, then budget for ~1.5 of them.
    let probe_dir = temp_store("lru-bound-probe");
    let probe = ResultStore::with_capacity(&probe_dir, u64::MAX);
    run_grid_parallel_store(&specs, &base, &VARIANTS, short(), 1, &probe).unwrap();
    let fp0 = journal::fingerprint(&base, short());
    let one = std::fs::metadata(probe_dir.join(format!("{fp0:016x}.jsonl"))).unwrap().len();
    let _ = std::fs::remove_dir_all(&probe_dir);

    let budget = one + one / 2;
    let store = ResultStore::with_capacity(&dir, budget);
    // Three sweeps with different lengths → three fingerprint files, of
    // which the budget can hold one.
    let lens = [short(), SimLength { warmup: 2_000, measure: 8_100 },
        SimLength { warmup: 2_000, measure: 8_200 }];
    for len in lens {
        run_grid_parallel_store(&specs, &base, &VARIANTS, len, 1, &store).unwrap();
    }
    assert!(store.stats().evicted_files >= 1, "budget forced evictions");
    let total: u64 = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .filter(|e| {
            let n = e.file_name();
            n.to_string_lossy().ends_with(".jsonl") && n.to_string_lossy() != "lru.jsonl"
        })
        .map(|e| e.metadata().unwrap().len())
        .sum();
    assert!(total <= budget, "data files {total} bytes exceed budget {budget}");
    // The most recent sweep survived: re-running it computes nothing.
    let warm = ResultStore::with_capacity(&dir, budget);
    run_grid_parallel_store(&specs, &base, &VARIANTS, lens[2], 1, &warm).unwrap();
    assert_eq!(warm.stats().published, 0, "most recently used sweep was evicted");
    let _ = std::fs::remove_dir_all(&dir);
}
