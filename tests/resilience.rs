//! Fault isolation and checkpoint/resume guarantees for the supervised
//! grid driver, plus the simulator's own runtime safety nets (forward-
//! progress watchdog, opt-in invariant checker).
//!
//! The acceptance properties from the supervision design:
//!
//! - an injected panicking / hanging / erroring cell degrades to a
//!   per-cell [`CellError`] while every other cell completes;
//! - a sweep killed mid-run and re-invoked with the same journal skips
//!   completed cells and produces results **bit-identical** to an
//!   uninterrupted `run_grid_serial`.

use cmpsim::core::experiment::{
    run_cells_resilient, run_grid_resilient, run_grid_serial, run_variant, ResilienceOptions,
    SimLength,
};
use cmpsim::core::journal;
use cmpsim::{workload, CellError, SimError, System, SystemConfig, Variant};
use cmpsim_harness::Supervisor;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const VARIANTS: [Variant; 2] = [Variant::Base, Variant::PrefetchCompression];

fn short() -> SimLength {
    SimLength { warmup: 2_000, measure: 8_000 }
}

fn small_base() -> SystemConfig {
    SystemConfig::paper_default(2).with_seed(11)
}

/// Supervision policy for tests: small pool, no deadline, no retries.
fn quick_supervisor() -> Supervisor {
    Supervisor {
        threads: 4,
        deadline: None,
        retries: 0,
        backoff: Duration::from_millis(1),
    }
}

/// A unique, pre-cleaned journal path for one test.
fn temp_journal(name: &str) -> PathBuf {
    let path = std::env::temp_dir()
        .join(format!("cmpsim-resilience-{}-{name}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn healthy_resilient_sweep_matches_serial_bit_for_bit() {
    let specs = vec![workload("zeus").unwrap(), workload("apsi").unwrap()];
    let base = small_base();
    let serial = run_grid_serial(&specs, &base, &VARIANTS, short()).unwrap();
    let opts = ResilienceOptions { supervisor: quick_supervisor(), journal: None, store: None };
    let resilient = run_grid_resilient(&specs, &base, &VARIANTS, short(), &opts);
    let cells: Vec<_> = resilient
        .into_iter()
        .map(|r| r.expect("healthy sweep must not degrade any cell"))
        .collect();
    // RunResult derives PartialEq over every counter and every f64, so
    // this is exact equality, not tolerance-based comparison.
    assert_eq!(serial, cells);
}

#[test]
fn panicking_cell_degrades_only_itself() {
    let specs = vec![workload("zeus").unwrap(), workload("apsi").unwrap()];
    let base = small_base();
    let len = short();
    let opts = ResilienceOptions { supervisor: quick_supervisor(), journal: None, store: None };
    let out = run_cells_resilient(&specs, &base, &VARIANTS, 0, &opts, move |s, b, v| {
        if s.name == "apsi" && v == Variant::Base {
            panic!("injected fault in apsi/base");
        }
        run_variant(s, b, v, len)
    });
    assert_eq!(out.len(), specs.len() * VARIANTS.len());
    for (i, cell) in out.iter().enumerate() {
        let (spec, variant) = (&specs[i / VARIANTS.len()], VARIANTS[i % VARIANTS.len()]);
        if spec.name == "apsi" && variant == Variant::Base {
            match cell {
                Err(CellError::Panicked { workload, variant, payload, attempts }) => {
                    assert_eq!(*workload, "apsi");
                    assert_eq!(*variant, Variant::Base);
                    assert_eq!(*attempts, 1);
                    assert!(payload.contains("injected fault"), "payload: {payload}");
                }
                other => panic!("expected Panicked for apsi/base, got {other:?}"),
            }
        } else {
            assert!(cell.is_ok(), "cell {i} should have completed: {cell:?}");
        }
    }
}

#[test]
fn hanging_cell_times_out_while_others_complete() {
    let specs = vec![workload("zeus").unwrap(), workload("apsi").unwrap()];
    let base = small_base();
    let len = short();
    // The deadline must dominate an honest smoke cell even on a slow,
    // oversubscribed host (debug build, one CPU, four workers) while
    // staying far below the injected 30 s hang — 1 s is two orders of
    // magnitude of headroom in each direction.
    let opts = ResilienceOptions {
        supervisor: Supervisor {
            deadline: Some(Duration::from_secs(1)),
            ..quick_supervisor()
        },
        journal: None,
        store: None,
    };
    let t0 = std::time::Instant::now();
    let out = run_cells_resilient(&specs, &base, &VARIANTS, 0, &opts, move |s, b, v| {
        if s.name == "zeus" && v == Variant::PrefetchCompression {
            // Far past the deadline; the supervisor abandons the thread.
            std::thread::sleep(Duration::from_secs(30));
        }
        run_variant(s, b, v, len)
    });
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "the sweep must not wait for the hung cell"
    );
    let hung: Vec<_> = out.iter().filter(|c| c.is_err()).collect();
    assert_eq!(hung.len(), 1, "exactly one cell should have failed: {out:?}");
    match hung[0] {
        Err(CellError::TimedOut { workload, variant, elapsed_ms }) => {
            assert_eq!(*workload, "zeus");
            assert_eq!(*variant, Variant::PrefetchCompression);
            assert!(*elapsed_ms >= 1_000, "elapsed_ms: {elapsed_ms}");
        }
        other => panic!("expected TimedOut, got {other:?}"),
    }
}

#[test]
fn sim_error_cell_is_reported_in_place() {
    let specs = vec![workload("zeus").unwrap()];
    let base = small_base();
    let len = short();
    let opts = ResilienceOptions { supervisor: quick_supervisor(), journal: None, store: None };
    let out = run_cells_resilient(&specs, &base, &VARIANTS, 0, &opts, move |s, b, v| {
        if v == Variant::Base {
            return Err(SimError::InvariantViolation {
                cycle: 42,
                subsystem: "l2",
                detail: "injected".to_string(),
            });
        }
        run_variant(s, b, v, len)
    });
    match &out[0] {
        Err(CellError::Sim { workload, error, .. }) => {
            assert_eq!(*workload, "zeus");
            assert_eq!(
                *error,
                SimError::InvariantViolation {
                    cycle: 42,
                    subsystem: "l2",
                    detail: "injected".to_string(),
                }
            );
        }
        other => panic!("expected Sim error, got {other:?}"),
    }
    assert!(out[1].is_ok(), "the healthy cell must still complete: {:?}", out[1]);
}

#[test]
fn transient_panic_recovers_under_retry() {
    let specs = vec![workload("zeus").unwrap()];
    let base = small_base();
    let len = short();
    let variants = [Variant::Base];
    let attempts = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&attempts);
    let opts = ResilienceOptions {
        supervisor: Supervisor { retries: 3, ..quick_supervisor() },
        journal: None,
        store: None,
    };
    let out = run_cells_resilient(&specs, &base, &variants, 0, &opts, move |s, b, v| {
        if counter.fetch_add(1, Ordering::SeqCst) < 2 {
            panic!("transient");
        }
        run_variant(s, b, v, len)
    });
    assert!(out[0].is_ok(), "cell should succeed on the third attempt: {:?}", out[0]);
    assert_eq!(attempts.load(Ordering::SeqCst), 3, "two failures + one success");
}

/// The headline acceptance test: a sweep "killed" after finishing only
/// the first workload (simulated by running the resilient driver over a
/// prefix of the spec list, journaling as it goes) resumes under the
/// full spec list with the same journal, re-runs **only** the missing
/// cells, and the assembled grid is bit-identical to an uninterrupted
/// serial sweep.
#[test]
fn killed_sweep_resumes_from_journal_bit_identically() {
    let specs = vec![
        workload("zeus").unwrap(),
        workload("apsi").unwrap(),
        workload("art").unwrap(),
    ];
    let base = small_base();
    let len = short();
    let path = temp_journal("resume");
    let fp = journal::fingerprint(&base, len);
    let opts = ResilienceOptions {
        supervisor: quick_supervisor(),
        journal: Some(path.clone()),
        store: None,
    };

    let calls = Arc::new(AtomicUsize::new(0));
    let make_cell_fn = |calls: Arc<AtomicUsize>| {
        move |s: &cmpsim_trace::WorkloadSpec, b: &SystemConfig, v: Variant| {
            calls.fetch_add(1, Ordering::SeqCst);
            run_variant(s, b, v, len)
        }
    };

    // Phase 1: the "interrupted" sweep — only the first workload finishes
    // before the (simulated) kill. Its cells land in the journal.
    let partial = run_cells_resilient(
        &specs[..1],
        &base,
        &VARIANTS,
        fp,
        &opts,
        make_cell_fn(Arc::clone(&calls)),
    );
    assert!(partial.iter().all(Result::is_ok));
    assert_eq!(calls.load(Ordering::SeqCst), VARIANTS.len());

    // Phase 2: re-invoke over the full sweep with the same journal. The
    // journaled cells must be skipped, not re-simulated.
    let resumed = run_cells_resilient(
        &specs,
        &base,
        &VARIANTS,
        fp,
        &opts,
        make_cell_fn(Arc::clone(&calls)),
    );
    assert_eq!(
        calls.load(Ordering::SeqCst),
        specs.len() * VARIANTS.len(),
        "resume must re-run only the cells missing from the journal"
    );

    // The assembled grid equals an uninterrupted serial sweep, exactly.
    let serial = run_grid_serial(&specs, &base, &VARIANTS, len).unwrap();
    let cells: Vec<_> = resumed.into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(serial, cells, "resumed grid diverged from the uninterrupted run");

    // Phase 3: a third invocation re-runs nothing at all.
    let replayed = run_cells_resilient(
        &specs,
        &base,
        &VARIANTS,
        fp,
        &opts,
        make_cell_fn(Arc::clone(&calls)),
    );
    assert_eq!(calls.load(Ordering::SeqCst), specs.len() * VARIANTS.len());
    let cells: Vec<_> = replayed.into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(serial, cells);

    let _ = std::fs::remove_file(&path);
}

/// Kill-mid-append crash safety, exhaustively: truncating the journal at
/// **every byte offset** (simulating a kill at any instant of a write)
/// must never lose an intact cell, never resurrect a torn one, and never
/// break the loader.
#[test]
fn journal_truncated_at_every_byte_offset_recovers_all_intact_cells() {
    let specs = vec![workload("zeus").unwrap(), workload("apsi").unwrap()];
    let base = small_base();
    let len = short();
    let path = temp_journal("torn-every-offset");
    let fp = journal::fingerprint(&base, len);
    let opts = ResilienceOptions {
        supervisor: quick_supervisor(),
        journal: Some(path.clone()),
        store: None,
    };
    let full = run_cells_resilient(&specs, &base, &VARIANTS, fp, &opts, move |s, b, v| {
        run_variant(s, b, v, len)
    });
    assert!(full.iter().all(Result::is_ok));
    let bytes = std::fs::read(&path).expect("journal written");
    assert_eq!(
        bytes.iter().filter(|&&b| b == b'\n').count(),
        1 + specs.len() * VARIANTS.len(),
        "header + one line per cell"
    );

    let torn = temp_journal("torn-every-offset-cut");
    for cut in 0..bytes.len() {
        let prefix = &bytes[..cut];
        std::fs::write(&torn, prefix).unwrap();
        let j = journal::Journal::new(&torn, fp);
        let snap = j.load().unwrap_or_else(|e| panic!("load failed at cut {cut}: {e}"));
        let complete_lines = prefix.iter().filter(|&&b| b == b'\n').count();
        let expected = complete_lines.saturating_sub(1); // header eats one line
        assert_eq!(
            snap.entries.len(),
            expected,
            "cut at byte {cut}: every cell whose line fully reached disk must survive"
        );
        assert!(snap.skipped.is_empty(), "cut at {cut}: a torn tail is repair, not corruption");
        // The repair is physical: the file now ends at a record boundary,
        // so appending resumes cleanly.
        let on_disk = std::fs::read(&torn).unwrap_or_default();
        assert!(
            on_disk.is_empty() || on_disk.ends_with(b"\n"),
            "cut at {cut}: repaired file must end on a record boundary"
        );
    }
    let _ = std::fs::remove_file(&torn);

    // Driver-level resume across a mid-record kill: truncate into the
    // last record, then re-run the sweep. Only the torn cell re-runs and
    // the assembled grid is bit-identical to the uninterrupted serial one.
    let last_line_start = bytes[..bytes.len() - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .unwrap()
        + 1;
    let cut = last_line_start + (bytes.len() - 1 - last_line_start) / 2;
    std::fs::write(&path, &bytes[..cut]).unwrap();
    let calls = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&calls);
    let resumed = run_cells_resilient(&specs, &base, &VARIANTS, fp, &opts, move |s, b, v| {
        counter.fetch_add(1, Ordering::SeqCst);
        run_variant(s, b, v, len)
    });
    assert_eq!(calls.load(Ordering::SeqCst), 1, "only the torn cell re-runs");
    let serial = run_grid_serial(&specs, &base, &VARIANTS, len).unwrap();
    let cells: Vec<_> = resumed.into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(serial, cells, "post-repair resume diverged from the uninterrupted run");
    let _ = std::fs::remove_file(&path);
}

/// A cell that keeps failing is journaled each time; once it reaches
/// [`journal::MAX_CELL_FAILURES`] journaled failures, resume quarantines
/// it — an explicit [`CellError::Quarantined`], zero re-runs — until the
/// journal is deleted.
#[test]
fn repeatedly_failing_cell_is_quarantined_on_resume() {
    let specs = vec![workload("zeus").unwrap()];
    let base = small_base();
    let len = short();
    let variants = [Variant::Base];
    let path = temp_journal("quarantine");
    let fp = journal::fingerprint(&base, len);
    let opts = ResilienceOptions {
        supervisor: quick_supervisor(),
        journal: Some(path.clone()),
        store: None,
    };
    let calls = Arc::new(AtomicUsize::new(0));
    let failing = |calls: Arc<AtomicUsize>| {
        move |_: &cmpsim_trace::WorkloadSpec, _: &SystemConfig, _: Variant| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(SimError::InvariantViolation {
                cycle: 1,
                subsystem: "l2",
                detail: "injected persistent failure".to_string(),
            })
        }
    };

    // Strikes 1 and 2: the cell runs (and fails) each time.
    for strike in 1..=journal::MAX_CELL_FAILURES {
        let out = run_cells_resilient(
            &specs,
            &base,
            &variants,
            fp,
            &opts,
            failing(Arc::clone(&calls)),
        );
        assert!(
            matches!(&out[0], Err(CellError::Sim { .. })),
            "strike {strike} should surface the SimError: {:?}",
            out[0]
        );
        assert_eq!(calls.load(Ordering::SeqCst) as u32, strike);
    }

    // Strike 3: quarantined — the cell function must not even be called.
    let out = run_cells_resilient(
        &specs,
        &base,
        &variants,
        fp,
        &opts,
        failing(Arc::clone(&calls)),
    );
    match &out[0] {
        Err(CellError::Quarantined { workload, variant, failures }) => {
            assert_eq!(*workload, "zeus");
            assert_eq!(*variant, Variant::Base);
            assert_eq!(*failures, journal::MAX_CELL_FAILURES);
        }
        other => panic!("expected Quarantined, got {other:?}"),
    }
    assert_eq!(
        calls.load(Ordering::SeqCst) as u32,
        journal::MAX_CELL_FAILURES,
        "a quarantined cell must not re-run"
    );
    let msg = out[0].as_ref().unwrap_err().to_string();
    assert!(msg.contains("quarantined"), "error should explain itself: {msg}");
    assert!(msg.contains("delete the journal"), "and name the remedy: {msg}");

    // Deleting the journal lifts the quarantine.
    std::fs::remove_file(&path).unwrap();
    let out = run_cells_resilient(
        &specs,
        &base,
        &variants,
        fp,
        &opts,
        failing(Arc::clone(&calls)),
    );
    assert!(matches!(&out[0], Err(CellError::Sim { .. })));
    assert_eq!(calls.load(Ordering::SeqCst) as u32, journal::MAX_CELL_FAILURES + 1);
    let _ = std::fs::remove_file(&path);
}

/// A journal written under one sweep definition must not poison a
/// different one: changing the fingerprint resets the journal and every
/// cell re-runs.
#[test]
fn changed_fingerprint_invalidates_the_journal() {
    let specs = vec![workload("zeus").unwrap()];
    let base = small_base();
    let len = short();
    let path = temp_journal("fingerprint");
    let opts = ResilienceOptions {
        supervisor: quick_supervisor(),
        journal: Some(path.clone()),
        store: None,
    };
    let calls = Arc::new(AtomicUsize::new(0));
    for fp in [1u64, 2u64] {
        let counter = Arc::clone(&calls);
        let out = run_cells_resilient(&specs, &base, &VARIANTS, fp, &opts, move |s, b, v| {
            counter.fetch_add(1, Ordering::SeqCst);
            run_variant(s, b, v, len)
        });
        assert!(out.iter().all(Result::is_ok));
    }
    assert_eq!(
        calls.load(Ordering::SeqCst),
        2 * VARIANTS.len(),
        "a fingerprint mismatch must discard the stale journal"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn livelock_watchdog_trips_on_tiny_budget_and_reports_diagnostics() {
    let spec = workload("zeus").unwrap();
    // A 50-cycle budget is far below a 400-cycle memory stall, so any
    // real workload trips the watchdog almost immediately.
    let cfg = small_base().with_livelock_budget(50);
    let mut sys = System::new(cfg, &spec);
    match sys.run(1_000, 4_000) {
        Err(SimError::Livelock { cycle, window, diagnostic, recent_events }) => {
            assert!(window >= 50, "window: {window}");
            assert!(cycle >= window);
            assert!(diagnostic.contains("core"), "diagnostic should dump per-core state");
            // Tracing is off, so the watchdog's emergency recorder must
            // have armed and captured the final event window.
            assert!(
                !recent_events.is_empty(),
                "emergency flight recorder should capture the last events"
            );
        }
        other => panic!("expected Livelock with a 50-cycle budget, got {other:?}"),
    }
}

#[test]
fn livelock_watchdog_disabled_with_zero_budget() {
    let spec = workload("zeus").unwrap();
    let cfg = small_base().with_livelock_budget(0);
    let mut sys = System::new(cfg, &spec);
    sys.run(1_000, 4_000).expect("budget 0 disables the watchdog");
}

#[test]
fn healthy_run_passes_watchdog_and_invariant_checks() {
    // Invariants are forced on (field, not env, to avoid races with
    // other tests mutating the environment) across base and the full
    // compression + prefetching stack.
    for variant in [Variant::Base, Variant::PrefetchCompression] {
        let spec = workload("oltp").unwrap();
        let cfg = variant.apply(small_base()).with_invariant_checks(true);
        let mut sys = System::new(cfg, &spec);
        let result = sys
            .run(2_000, 10_000)
            .unwrap_or_else(|e| panic!("healthy {variant:?} run failed checks: {e}"));
        assert!(result.stats.instructions > 0);
    }
}
