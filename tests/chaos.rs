//! Determinism-under-fire guarantees for the seeded chaos engine.
//!
//! The acceptance properties:
//!
//! - an armed chaos plan is **bit-reproducible from its seed**: the same
//!   `(seed, rate)` produces the identical [`RunResult`] — including
//!   every fault counter — on every run and at 1/2/8 worker threads;
//! - chaos armed with rate 0 is bit-identical to chaos disarmed (and the
//!   CI digest gate separately pins disarmed == the pre-chaos goldens);
//! - detected corruption is recovered (invalidate + refetch), and every
//!   injected single-bit codec fault *is* detected — the FNV line
//!   checksum provably catches single-bit flips;
//! - when a fault-recovery budget is exhausted the run fails loudly with
//!   [`SimError::FaultBudgetExhausted`] carrying a flight-recorder tail.

use cmpsim::{
    run_grid_parallel, run_grid_serial, workload, FaultPlan, SimError, SimLength, System,
    SystemConfig, Variant,
};

const SEED: u64 = 7;
const RATE: f64 = 0.02;

fn base() -> SystemConfig {
    SystemConfig::paper_default(2).with_seed(11)
}

fn run_cell(variant: Variant, chaos: Option<FaultPlan>) -> cmpsim::RunResult {
    let spec = workload("zeus").unwrap();
    let mut sys = System::new(variant.apply(base()), &spec);
    sys.set_chaos(chaos);
    sys.run(2_000, 8_000).expect("cell survives this fault rate")
}

#[test]
fn armed_chaos_is_bit_reproducible_from_its_seed() {
    let plan = FaultPlan::new(SEED, RATE);
    let a = run_cell(Variant::PrefetchCompression, Some(plan));
    let b = run_cell(Variant::PrefetchCompression, Some(plan));
    assert_eq!(a, b, "same seed must replay bit-identically, fault counters included");
    assert_eq!(a.stats.faults, b.stats.faults);

    let f = &a.stats.faults;
    let injected = f.codec_faults_injected
        + f.link_faults_injected
        + f.mem_stall_bursts
        + f.dir_messages_lost;
    assert!(injected > 0, "this rate must actually inject faults: {f:?}");
    assert_eq!(
        f.codec_faults_detected, f.codec_faults_injected,
        "the FNV line checksum catches every single-bit flip"
    );
    assert_eq!(
        f.fault_recoveries, f.codec_faults_detected,
        "every detected corruption is recovered by invalidate + refetch"
    );
    assert_eq!(
        a.stats.link.dropped_messages + a.stats.link.corrupted_messages,
        f.link_faults_injected,
        "link fault counters agree with the channel's own accounting"
    );
}

#[test]
fn rate_zero_armed_is_bit_identical_to_disarmed() {
    for variant in [Variant::Base, Variant::PrefetchCompression] {
        let disarmed = run_cell(variant, None);
        let armed_inert = run_cell(variant, Some(FaultPlan::new(SEED, 0.0)));
        assert_eq!(disarmed, armed_inert, "{variant:?}: rate 0 must be inert");
        assert_eq!(disarmed.stats.faults, Default::default());
    }
}

#[test]
fn different_chaos_seeds_diverge() {
    let a = run_cell(Variant::PrefetchCompression, Some(FaultPlan::new(1, RATE)));
    let b = run_cell(Variant::PrefetchCompression, Some(FaultPlan::new(2, RATE)));
    assert_ne!(
        (a.cycles, a.stats.faults),
        (b.cycles, b.stats.faults),
        "distinct seeds should shuffle the fault schedule"
    );
}

/// The grid-level property the ISSUE pins: an **env-armed** chaos run is
/// bit-reproducible across repeated invocations and across 1/2/8 worker
/// threads. This test owns the `CMPSIM_CHAOS` mutation for this binary;
/// the other tests arm chaos through `System::set_chaos`, which
/// overrides the environment either way.
#[test]
fn env_armed_chaos_grid_is_thread_invariant() {
    std::env::set_var("CMPSIM_CHAOS", "9:0.01");
    let specs = vec![workload("zeus").unwrap(), workload("apsi").unwrap()];
    let variants = [Variant::Base, Variant::PrefetchCompression];
    let len = SimLength { warmup: 2_000, measure: 8_000 };
    let serial = run_grid_serial(&specs, &base(), &variants, len).unwrap();
    let rerun = run_grid_serial(&specs, &base(), &variants, len).unwrap();
    assert_eq!(serial, rerun, "repeated env-armed invocations must be bit-identical");
    assert!(
        serial.iter().any(|c| {
            let f = &c.result.stats.faults;
            f.link_faults_injected + f.mem_stall_bursts + f.codec_faults_injected > 0
        }),
        "the armed grid should see some injections"
    );
    for threads in [1, 2, 8] {
        let par = run_grid_parallel(&specs, &base(), &variants, len, threads).unwrap();
        assert_eq!(serial, par, "chaos grid diverged at {threads} threads");
    }
    std::env::remove_var("CMPSIM_CHAOS");
}

/// The integrity contract is codec-independent: under BDI and ZCA the
/// fault machinery routes through the same monomorphized
/// compress→fast-decode image as FPC, so every injected single-bit codec
/// fault is caught at decompression (FNV checksum over the decoded
/// bytes) and recovered by invalidate + refetch, and corrupted link
/// deliveries never reach the L2.
#[test]
fn bdi_and_zca_detect_and_recover_every_codec_fault() {
    for codec in [cmpsim::CodecKind::Bdi, cmpsim::CodecKind::Zca] {
        let spec = workload("zeus").unwrap();
        let cfg = Variant::PrefetchCompression.apply(base()).with_codec(codec);
        let mut sys = System::new(cfg, &spec);
        sys.set_chaos(Some(FaultPlan::new(SEED, 0.03)));
        let r = sys.run(5_000, 20_000).expect("cell survives this fault rate");
        let f = &r.stats.faults;
        assert!(f.codec_faults_injected > 0, "{codec}: no codec faults injected: {f:?}");
        assert_eq!(
            f.codec_faults_detected, f.codec_faults_injected,
            "{codec}: a flipped bit escaped the decompression-time checksum"
        );
        assert_eq!(
            f.fault_recoveries, f.codec_faults_detected,
            "{codec}: a detected corruption was not recovered"
        );
        assert_eq!(
            r.stats.link.dropped_messages + r.stats.link.corrupted_messages,
            f.link_faults_injected,
            "{codec}: link fault counters disagree with the channel"
        );
    }
}

/// At a hotter rate the same line eventually takes
/// `QUARANTINE_STRIKES` corruptions and is pinned to the uncompressed
/// encoding — the run survives and the counter records the demotion.
#[test]
fn repeated_strikes_quarantine_a_line_to_uncompressed() {
    let spec = workload("zeus").unwrap();
    let mut sys = System::new(Variant::PrefetchCompression.apply(base()), &spec);
    sys.set_chaos(Some(FaultPlan::new(SEED, 0.05)));
    let r = sys.run(5_000, 20_000).expect("rate 0.05 stays within every budget");
    let f = &r.stats.faults;
    assert!(f.lines_quarantined > 0, "expected at least one quarantined line: {f:?}");
    assert_eq!(f.fault_recoveries, f.codec_faults_detected);
}

#[test]
fn exhausted_link_budget_fails_loudly_with_recorder_tail() {
    let spec = workload("zeus").unwrap();
    let mut sys = System::new(base(), &spec);
    // Rate 1.0: every link request is dropped, so the very first L2 miss
    // burns all its delivery attempts.
    sys.set_chaos(Some(FaultPlan::new(3, 1.0)));
    match sys.run(1_000, 4_000) {
        Err(SimError::FaultBudgetExhausted { site, attempts, recent_events, .. }) => {
            assert_eq!(site, "link-request");
            assert_eq!(attempts, 4);
            assert!(
                !recent_events.is_empty(),
                "chaos arming must guarantee a flight-recorder tail"
            );
            assert!(
                recent_events.iter().any(|e| e.contains("fault")),
                "the tail should show the injections: {recent_events:?}"
            );
        }
        other => panic!("expected FaultBudgetExhausted, got {other:?}"),
    }
}
