//! Determinism guarantees for the experiment grid: the same seed must
//! produce byte-identical results run-to-run, and the parallel grid
//! driver must be indistinguishable from the serial one at any thread
//! count (the contract documented on `run_grid_parallel`).

use cmpsim::{
    all_workloads, run_grid_parallel, run_grid_serial, SimLength, SystemConfig, Variant,
};

/// The paper's 8×4 sweep: every workload under the four headline
/// configurations.
const VARIANTS: [Variant; 4] = [
    Variant::Base,
    Variant::BothCompression,
    Variant::Prefetch,
    Variant::PrefetchCompression,
];

fn short() -> SimLength {
    SimLength { warmup: 5_000, measure: 20_000 }
}

#[test]
fn serial_grid_is_repeatable() {
    let specs = all_workloads();
    let base = SystemConfig::paper_default(4).with_seed(11);
    let a = run_grid_serial(&specs, &base, &VARIANTS, short()).unwrap();
    let b = run_grid_serial(&specs, &base, &VARIANTS, short()).unwrap();
    assert_eq!(a.len(), specs.len() * VARIANTS.len());
    // RunResult derives PartialEq over every counter and every f64, so
    // this is exact equality, not tolerance-based comparison.
    assert_eq!(a, b, "two serial runs with the same seed diverged");
}

#[test]
fn parallel_grid_matches_serial_at_every_thread_count() {
    let specs = all_workloads();
    let base = SystemConfig::paper_default(4).with_seed(11);
    let serial = run_grid_serial(&specs, &base, &VARIANTS, short()).unwrap();
    for threads in [1usize, 2, 8] {
        let par = run_grid_parallel(&specs, &base, &VARIANTS, short(), threads).unwrap();
        assert_eq!(serial, par, "parallel grid diverged at {threads} threads");
    }
}

#[test]
fn grid_cells_are_ordered_row_major() {
    let specs = all_workloads();
    let base = SystemConfig::paper_default(4).with_seed(11);
    let cells = run_grid_parallel(&specs, &base, &VARIANTS, short(), 8).unwrap();
    for (i, cell) in cells.iter().enumerate() {
        assert_eq!(cell.workload, specs[i / VARIANTS.len()].name);
        assert_eq!(cell.variant, VARIANTS[i % VARIANTS.len()]);
        assert_eq!(cell.seed, base.seed);
    }
}

#[test]
fn different_seeds_produce_different_grids() {
    let specs = vec![cmpsim::workload("zeus").unwrap()];
    let a = run_grid_serial(
        &specs,
        &SystemConfig::paper_default(4).with_seed(11),
        &VARIANTS,
        short(),
    ).unwrap();
    let b = run_grid_serial(
        &specs,
        &SystemConfig::paper_default(4).with_seed(23),
        &VARIANTS,
        short(),
    ).unwrap();
    assert_ne!(a, b, "seed is not reaching the simulation");
}
