//! # cmpsim — compression × prefetching in chip multiprocessors
//!
//! A from-scratch Rust reproduction of **Alameldeen & Wood, "Interactions
//! Between Compression and Prefetching in Chip Multiprocessors" (HPCA
//! 2007)**: a discrete-event CMP cache-hierarchy simulator with
//!
//! - Frequent Pattern Compression ([`fpc`]),
//! - a decoupled variable-segment compressed L2 ([`cache`]),
//! - MSI coherence with in-tag sharer bits ([`coherence`]),
//! - a flit-based, bandwidth-metered off-chip link with link compression
//!   ([`link`]),
//! - a form-preserving memory controller ([`mem`]),
//! - Power4-style stride prefetchers and the paper's adaptive throttle
//!   ([`prefetch`]),
//! - synthetic workload generators calibrated to the paper's eight
//!   benchmarks ([`trace`]), and
//! - the assembled timing simulator with experiment drivers ([`core`]).
//!
//! The most common entry points are re-exported at the crate root.
//!
//! # Quick start
//!
//! ```no_run
//! use cmpsim::{workload, System, SystemConfig, Variant};
//!
//! let spec = workload("zeus").expect("one of the paper's 8 benchmarks");
//! let base = SystemConfig::paper_default(8);
//!
//! // Base system vs. compression + prefetching combined.
//! let mut sys = System::new(Variant::Base.apply(base.clone()), &spec);
//! let before = sys.run(400_000, 1_200_000).expect("simulation failed");
//! let mut sys = System::new(Variant::PrefetchCompression.apply(base), &spec);
//! let after = sys.run(400_000, 1_200_000).expect("simulation failed");
//! println!("speedup: {:.2}x", before.runtime() as f64 / after.runtime() as f64);
//! ```

pub use cmpsim_cache as cache;
pub use cmpsim_coherence as coherence;
pub use cmpsim_core as core;
pub use cmpsim_fpc as fpc;
pub use cmpsim_link as link;
pub use cmpsim_mem as mem;
pub use cmpsim_prefetch as prefetch;
pub use cmpsim_trace as trace;

pub use cmpsim_core::{
    experiment::{
        across_seeds, run_grid_parallel, run_grid_parallel_store, run_grid_resilient,
        run_grid_serial, run_variant, GridCell, ResilienceOptions, SimLength, VariantGrid,
    },
    metrics, report, telemetry, CellError, CellKey, CodecKind, FaultPlan, FaultSite, FaultStats,
    Lease, PrefetchMode, ResultStore, RunResult, SimError, SimStats, StoreStats, System,
    SystemConfig, TelemetrySample, TraceKind, TraceOptions, Variant,
};
pub use cmpsim_link::LinkBandwidth;
pub use cmpsim_trace::{all_workloads, commercial_workloads, scientific_workloads, workload};
